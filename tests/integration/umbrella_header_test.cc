// Copyright 2026 The pasjoin Authors.
//
// Compile-level check of the umbrella header: one translation unit that
// touches every public module through "pasjoin.h" alone.
#include "pasjoin.h"

#include <gtest/gtest.h>

namespace pasjoin {
namespace {

TEST(UmbrellaHeaderTest, EveryModuleIsReachable) {
  // common
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_TRUE(Status::OK().ok());
  Rng rng(1);
  EXPECT_LT(rng.NextDouble(), 1.0);

  // datagen
  const Dataset data = datagen::GenerateUniform(64, 2, Rect{0, 0, 8, 8});
  EXPECT_EQ(datagen::Summarize(data).count, 64u);

  // grid + agreements + core replication
  const grid::Grid g = grid::Grid::Make(Rect{0, 0, 8, 8}, 1.0).MoveValue();
  grid::GridStats stats(&g);
  stats.AddSample(Side::kR, data, 1.0, 1);
  stats.AddSample(Side::kS, data, 1.0, 2);
  agreements::AgreementGraph graph =
      agreements::AgreementGraph::Build(g, stats, agreements::Policy::kLPiB);
  graph.RunDuplicateFreeMarking();
  EXPECT_FALSE(agreements::SubgraphToString(graph.Subgraph(0)).empty());
  const core::ReplicationAssigner assigner(&g, &graph);
  EXPECT_GE(assigner.Assign({4, 4}, Side::kR).size(), 1u);

  // cost model
  const core::CostModel model(&g, &stats);
  EXPECT_GE(model.Predict(graph).total_candidates, 0.0);

  // spatial
  const spatial::RTree tree(data.tuples);
  EXPECT_EQ(tree.size(), 64u);

  // exec + core join + baselines
  core::AdaptiveJoinOptions join;
  join.eps = 0.5;
  join.workers = 2;
  join.physical_threads = 1;
  join.sample_rate = 1.0;
  EXPECT_TRUE(core::AdaptiveDistanceJoin(data, data, join).ok());
  core::SelfJoinOptions self;
  self.eps = 0.5;
  self.workers = 2;
  self.physical_threads = 1;
  EXPECT_TRUE(core::SelfDistanceJoin(data, self).ok());
  baselines::PbsmOptions pbsm;
  pbsm.eps = 0.5;
  pbsm.workers = 2;
  pbsm.physical_threads = 1;
  EXPECT_TRUE(
      baselines::PbsmDistanceJoin(data, data, baselines::PbsmVariant::kUniR,
                                  pbsm)
          .ok());

  // extent
  const extent::ExtentDataset rivers =
      extent::GenerateRiverPolylines(16, 3, Rect{0, 0, 8, 8});
  extent::ExtentJoinOptions ext;
  ext.eps = 0.3;
  ext.workers = 2;
  ext.physical_threads = 1;
  EXPECT_TRUE(extent::GridExtentDistanceJoin(rivers, rivers, ext).ok());
}

}  // namespace
}  // namespace pasjoin
