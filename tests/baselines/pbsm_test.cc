// Copyright 2026 The pasjoin Authors.
#include "baselines/pbsm.h"

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "test_util.h"

namespace pasjoin::baselines {
namespace {

using pasjoin::testing::BruteForcePairs;

Dataset SmallGaussian(size_t n, uint64_t seed) {
  datagen::GaussianClustersOptions options;
  options.num_clusters = 6;
  options.sigma_min = 0.3;
  options.sigma_max = 1.2;
  options.mbr = Rect{0, 0, 30, 30};
  return datagen::GenerateGaussianClusters(n, seed, options);
}

PbsmOptions BaseOptions() {
  PbsmOptions options;
  options.eps = 0.5;
  options.workers = 4;
  options.physical_threads = 2;
  return options;
}

TEST(PbsmTest, VariantNames) {
  EXPECT_STREQ(PbsmVariantName(PbsmVariant::kUniR), "UNI(R)");
  EXPECT_STREQ(PbsmVariantName(PbsmVariant::kUniS), "UNI(S)");
  EXPECT_STREQ(PbsmVariantName(PbsmVariant::kEpsGrid), "eps-grid");
}

TEST(PbsmTest, ValidatesOptions) {
  const Dataset r = SmallGaussian(50, 1);
  PbsmOptions options = BaseOptions();
  options.eps = -1;
  EXPECT_FALSE(PbsmDistanceJoin(r, r, PbsmVariant::kUniR, options).ok());
  const Dataset empty;
  EXPECT_FALSE(
      PbsmDistanceJoin(r, empty, PbsmVariant::kUniR, BaseOptions()).ok());
}

TEST(PbsmTest, AllVariantsMatchBruteForce) {
  const Dataset r = SmallGaussian(1500, 2);
  const Dataset s = SmallGaussian(1800, 3);
  const size_t truth = BruteForcePairs(r, s, 0.5).size();
  for (const auto variant :
       {PbsmVariant::kUniR, PbsmVariant::kUniS, PbsmVariant::kEpsGrid}) {
    Result<exec::JoinRun> run =
        PbsmDistanceJoin(r, s, variant, BaseOptions());
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run.value().metrics.results, truth)
        << PbsmVariantName(variant);
  }
}

TEST(PbsmTest, OnlyTheChosenSideIsReplicated) {
  const Dataset r = SmallGaussian(1000, 4);
  const Dataset s = SmallGaussian(1000, 5);
  const exec::JobMetrics uni_r =
      PbsmDistanceJoin(r, s, PbsmVariant::kUniR, BaseOptions())
          .value()
          .metrics;
  EXPECT_GT(uni_r.replicated_r, 0u);
  EXPECT_EQ(uni_r.replicated_s, 0u);
  const exec::JobMetrics uni_s =
      PbsmDistanceJoin(r, s, PbsmVariant::kUniS, BaseOptions())
          .value()
          .metrics;
  EXPECT_EQ(uni_s.replicated_r, 0u);
  EXPECT_GT(uni_s.replicated_s, 0u);
}

TEST(PbsmTest, EpsGridReplicatesTheSmallerSet) {
  const Dataset small = SmallGaussian(500, 6);
  const Dataset large = SmallGaussian(2000, 7);
  const exec::JobMetrics m =
      PbsmDistanceJoin(small, large, PbsmVariant::kEpsGrid, BaseOptions())
          .value()
          .metrics;
  EXPECT_GT(m.replicated_r, 0u);  // R is the smaller input here
  EXPECT_EQ(m.replicated_s, 0u);
  const exec::JobMetrics m2 =
      PbsmDistanceJoin(large, small, PbsmVariant::kEpsGrid, BaseOptions())
          .value()
          .metrics;
  EXPECT_EQ(m2.replicated_r, 0u);
  EXPECT_GT(m2.replicated_s, 0u);
}

TEST(PbsmTest, EpsGridReplicatesMoreThanTwoEpsGrid) {
  // Finer cells mean more boundary: the eps-grid variant must replicate more
  // objects than UNI on the 2-eps grid (the paper reports ~7x).
  const Dataset r = SmallGaussian(2000, 8);
  const Dataset s = SmallGaussian(2500, 9);
  const uint64_t eps_grid =
      PbsmDistanceJoin(r, s, PbsmVariant::kEpsGrid, BaseOptions())
          .value()
          .metrics.ReplicatedTotal();
  const uint64_t uni =
      PbsmDistanceJoin(r, s, PbsmVariant::kUniR, BaseOptions())
          .value()
          .metrics.ReplicatedTotal();
  EXPECT_GT(eps_grid, uni);
}

TEST(PbsmTest, LptOptionKeepsResultsIdentical) {
  const Dataset r = SmallGaussian(1000, 10);
  const Dataset s = SmallGaussian(1000, 11);
  PbsmOptions options = BaseOptions();
  const uint64_t hash_results =
      PbsmDistanceJoin(r, s, PbsmVariant::kUniR, options)
          .value()
          .metrics.results;
  options.use_lpt = true;
  const uint64_t lpt_results =
      PbsmDistanceJoin(r, s, PbsmVariant::kUniR, options)
          .value()
          .metrics.results;
  EXPECT_EQ(hash_results, lpt_results);
}

TEST(PbsmTest, ResolutionFactorSweepStaysCorrect) {
  const Dataset r = SmallGaussian(800, 12);
  const Dataset s = SmallGaussian(800, 13);
  const size_t truth = BruteForcePairs(r, s, 0.5).size();
  for (const double factor : {2.0, 3.0, 5.0}) {
    PbsmOptions options = BaseOptions();
    options.resolution_factor = factor;
    EXPECT_EQ(PbsmDistanceJoin(r, s, PbsmVariant::kUniS, options)
                  .value()
                  .metrics.results,
              truth)
        << factor;
  }
}

}  // namespace
}  // namespace pasjoin::baselines
