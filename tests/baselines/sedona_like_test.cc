// Copyright 2026 The pasjoin Authors.
#include "baselines/sedona_like.h"

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "test_util.h"

namespace pasjoin::baselines {
namespace {

using pasjoin::testing::BruteForcePairs;

Dataset SmallGaussian(size_t n, uint64_t seed) {
  datagen::GaussianClustersOptions options;
  options.num_clusters = 6;
  options.sigma_min = 0.3;
  options.sigma_max = 1.2;
  options.mbr = Rect{0, 0, 30, 30};
  return datagen::GenerateGaussianClusters(n, seed, options);
}

SedonaOptions BaseOptions() {
  SedonaOptions options;
  options.eps = 0.5;
  options.workers = 4;
  options.physical_threads = 2;
  options.sample_rate = 0.2;
  options.quadtree.max_items_per_node = 64;
  options.fixed_capacity = true;
  return options;
}

TEST(SedonaLikeTest, ValidatesOptions) {
  const Dataset r = SmallGaussian(50, 1);
  SedonaOptions options = BaseOptions();
  options.eps = 0;
  EXPECT_FALSE(SedonaLikeDistanceJoin(r, r, options).ok());
  options = BaseOptions();
  options.sample_rate = 0;
  EXPECT_FALSE(SedonaLikeDistanceJoin(r, r, options).ok());
  const Dataset empty;
  EXPECT_FALSE(SedonaLikeDistanceJoin(empty, r, BaseOptions()).ok());
}

TEST(SedonaLikeTest, MatchesBruteForce) {
  const Dataset r = SmallGaussian(1500, 2);
  const Dataset s = SmallGaussian(2000, 3);
  Result<exec::JoinRun> run = SedonaLikeDistanceJoin(r, s, BaseOptions());
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().metrics.results, BruteForcePairs(r, s, 0.5).size());
  EXPECT_EQ(run.value().metrics.algorithm, "Sedona");
}

TEST(SedonaLikeTest, CollectedPairsAreInCanonicalOrder) {
  const Dataset r = SmallGaussian(400, 4);
  const Dataset s = SmallGaussian(400, 5);
  SedonaOptions options = BaseOptions();
  options.collect_results = true;
  Result<exec::JoinRun> run = SedonaLikeDistanceJoin(r, s, options);
  ASSERT_TRUE(run.ok());
  const auto truth = BruteForcePairs(r, s, 0.5);
  ASSERT_EQ(run.value().pairs.size(), truth.size());
  for (const ResultPair& p : run.value().pairs) {
    EXPECT_TRUE(truth.count(p)) << p.r_id << "," << p.s_id;
  }
}

TEST(SedonaLikeTest, ReplicatesOnlyTheSmallerSet) {
  // Uniform data guarantees points near every partition border.
  const Dataset small = pasjoin::testing::MakeDataset(
      [] {
        std::vector<Point> pts;
        Rng rng(6);
        for (int i = 0; i < 600; ++i) {
          pts.push_back(Point{rng.NextUniform(0, 30), rng.NextUniform(0, 30)});
        }
        return pts;
      }(),
      0, "small");
  const Dataset large = SmallGaussian(2400, 7);
  const exec::JobMetrics m =
      SedonaLikeDistanceJoin(small, large, BaseOptions()).value().metrics;
  EXPECT_GT(m.replicated_r, 0u);
  EXPECT_EQ(m.replicated_s, 0u);
  const exec::JobMetrics m2 =
      SedonaLikeDistanceJoin(large, small, BaseOptions()).value().metrics;
  EXPECT_EQ(m2.replicated_r, 0u);
  EXPECT_GT(m2.replicated_s, 0u);
}

TEST(SedonaLikeTest, CoarsePartitioningReducesReplication) {
  // Fewer, larger partitions -> fewer boundary crossings (the behaviour the
  // paper observes for Sedona's QuadTree partitions in Figure 10).
  const Dataset r = SmallGaussian(2000, 8);
  const Dataset s = SmallGaussian(2000, 9);
  SedonaOptions fine = BaseOptions();
  fine.quadtree.max_items_per_node = 8;
  SedonaOptions coarse = BaseOptions();
  coarse.quadtree.max_items_per_node = 512;
  const uint64_t fine_repl =
      SedonaLikeDistanceJoin(r, s, fine).value().metrics.ReplicatedTotal();
  const uint64_t coarse_repl =
      SedonaLikeDistanceJoin(r, s, coarse).value().metrics.ReplicatedTotal();
  EXPECT_LT(coarse_repl, fine_repl);
}

TEST(SedonaLikeTest, WorksWithTinySample) {
  const Dataset r = SmallGaussian(1000, 10);
  const Dataset s = SmallGaussian(1000, 11);
  SedonaOptions options = BaseOptions();
  options.sample_rate = 0.01;
  Result<exec::JoinRun> run = SedonaLikeDistanceJoin(r, s, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().metrics.results, BruteForcePairs(r, s, 0.5).size());
}

}  // namespace
}  // namespace pasjoin::baselines
