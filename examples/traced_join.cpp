// Copyright 2026 The pasjoin Authors.
//
// Traced join: run the adaptive-replication join with the execution tracer
// attached and export a Chrome trace-event file (docs/OBSERVABILITY.md).
//
//   1. generate two clustered point sets;
//   2. attach an obs::TraceRecorder and run AdaptiveDistanceJoin;
//   3. write the trace JSON (load it at https://ui.perfetto.dev or
//      chrome://tracing) and print a span-count summary.
//
// Build & run:   ./build/examples/traced_join [trace.json]
// Inspect:       tools/trace_summary.py trace.json --validate
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/adaptive_join.h"
#include "datagen/generators.h"

int main(int argc, char** argv) {
  using namespace pasjoin;

  const std::string trace_path = argc > 1 ? argv[1] : "trace.json";

  const Dataset r = datagen::MakePaperDataset(datagen::PaperDataset::kS1, 60000);
  const Dataset s = datagen::MakePaperDataset(datagen::PaperDataset::kS2, 60000);

  obs::TraceRecorder recorder;

  core::AdaptiveJoinOptions options;
  options.eps = 0.12;
  options.policy = agreements::Policy::kLPiB;
  options.workers = 8;
  options.collect_results = false;
  options.trace = &recorder;

  const Result<exec::JoinRun> run = core::AdaptiveDistanceJoin(r, s, options);
  if (!run.ok()) {
    std::fprintf(stderr, "join failed: %s\n", run.status().ToString().c_str());
    return 1;
  }

  const exec::JobMetrics& m = run.value().metrics;
  std::printf("%s\n", m.ToString().c_str());

  // Per-span-name counts, straight from the recorder (the JSON carries the
  // same events plus the counters registry).
  std::map<std::string, size_t> span_counts;
  const std::vector<obs::TraceEvent> events = recorder.Snapshot();
  for (const obs::TraceEvent& event : events) {
    ++span_counts[event.name];
  }
  std::printf("recorded %zu events on %zu threads:\n", events.size(),
              recorder.thread_count());
  for (const auto& [name, count] : span_counts) {
    std::printf("  %-24s %zu\n", name.c_str(), count);
  }
  if (recorder.dropped_events() > 0) {
    std::fprintf(stderr, "WARNING: %llu events dropped\n",
                 static_cast<unsigned long long>(recorder.dropped_events()));
  }

  const Status st = recorder.WriteJson(trace_path);
  if (!st.ok()) {
    std::fprintf(stderr, "trace export failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trace written to %s (load in Perfetto, or run "
              "tools/trace_summary.py %s --validate)\n",
              trace_path.c_str(), trace_path.c_str());
  return 0;
}
