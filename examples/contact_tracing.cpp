// Copyright 2026 The pasjoin Authors.
//
// Proximity / contact-tracing scenario: two days of location pings from two
// populations (e.g. staff vs visitors of a campus), each ping carrying a
// non-spatial payload (user id, device info, timestamp string). Find every
// cross-population pair of pings within the exposure radius.
//
// Demonstrates:
//   * tuples with payloads and their shuffle cost (the paper's tuple-size
//     experiments, Figures 16-18);
//   * carrying attributes through the join vs fetching them afterwards
//     (Table 5's two strategies) - here we carry them, which the paper shows
//     is ~3x faster end to end;
//   * result materialization via collect_results.
//
// Build & run:   ./build/examples/contact_tracing
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "core/adaptive_join.h"
#include "datagen/generators.h"

namespace {

/// Pings cluster around a handful of buildings plus walking paths.
pasjoin::Dataset MakePings(const std::string& name, size_t n, uint64_t seed,
                           size_t payload_bytes) {
  using namespace pasjoin;
  datagen::GaussianClustersOptions options;
  options.num_clusters = 12;          // buildings
  options.sigma_min = 0.002;          // ~200 m at mid latitudes
  options.sigma_max = 0.02;
  options.mbr = Rect{-71.13, 42.35, -71.05, 42.40};  // a campus-sized box
  Dataset pings = datagen::GenerateGaussianClusters(n, seed, options);
  pings.name = name;
  // Attach realistic payloads: "user=...;device=...;ts=..." of the requested
  // size (the engine accounts these bytes through the shuffle).
  Rng rng(seed ^ 0xdead);
  for (Tuple& t : pings.tuples) {
    std::string payload = "user=" + std::to_string(rng.NextBounded(5000)) +
                          ";device=phone;ts=2026-07-0" +
                          std::to_string(1 + rng.NextBounded(7));
    payload.resize(payload_bytes, '.');
    t.payload = std::move(payload);
  }
  return pings;
}

}  // namespace

int main() {
  using namespace pasjoin;
  const double exposure_radius = 0.0002;  // ~20 m in degrees
  const size_t payload_bytes = 64;

  const Dataset staff = MakePings("staff", 60000, 11, payload_bytes);
  const Dataset visitors = MakePings("visitors", 120000, 13, payload_bytes);

  core::AdaptiveJoinOptions options;
  options.eps = exposure_radius;
  options.policy = agreements::Policy::kDiff;
  options.workers = 8;
  options.collect_results = true;
  options.carry_payloads = true;  // Table 5's faster strategy

  const Result<exec::JoinRun> run =
      core::AdaptiveDistanceJoin(staff, visitors, options);
  if (!run.ok()) {
    std::fprintf(stderr, "join failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const exec::JobMetrics& m = run.value().metrics;

  std::printf("contact tracing: %zu staff pings x %zu visitor pings, "
              "radius %.4f deg\n",
              staff.size(), visitors.size(), exposure_radius);
  std::printf("  exposure pairs found: %llu\n",
              static_cast<unsigned long long>(m.results));
  std::printf("  replicated pings: %llu (%.2f%% of all pings)\n",
              static_cast<unsigned long long>(m.ReplicatedTotal()),
              100.0 * static_cast<double>(m.ReplicatedTotal()) /
                  static_cast<double>(staff.size() + visitors.size()));
  std::printf("  shuffled %.2f MB including %zu-byte payloads\n",
              static_cast<double>(m.shuffle_bytes) / (1024.0 * 1024.0), payload_bytes);
  std::printf("  end-to-end %.3fs (construction %.3fs, join %.3fs)\n",
              m.TotalSeconds(), m.construction_seconds, m.join_seconds);

  // A downstream consumer would now group pairs by user; show a sample.
  std::printf("  sample exposures (staff ping id, visitor ping id):\n");
  for (size_t i = 0; i < run.value().pairs.size() && i < 5; ++i) {
    std::printf("    (%lld, %lld)\n",
                static_cast<long long>(run.value().pairs[i].r_id),
                static_cast<long long>(run.value().pairs[i].s_id));
  }
  return 0;
}
