// Copyright 2026 The pasjoin Authors.
//
// Urban analytics scenario: match vehicle activity points (dense along road
// networks - the TIGER-like distribution) against points of interest (dense
// inside parks/venues - the OSM-like distribution), reporting every
// (activity, POI) pair within eps. This is the workload class the paper's
// introduction motivates: two *differently* skewed data sets, where a global
// replication choice is always wrong somewhere.
//
// The example runs the same join under all five grid algorithms and prints a
// comparison table, demonstrating why adaptive replication wins.
//
// Build & run:   ./build/examples/urban_poi_matching [n_points]
#include <cstdio>
#include <cstdlib>

#include "baselines/pbsm.h"
#include "core/adaptive_join.h"
#include "datagen/generators.h"

namespace {

void PrintRow(const pasjoin::exec::JobMetrics& m) {
  std::printf("  %-9s %12llu %12.2f %12.2f %10.3f %10llu\n",
              m.algorithm.c_str(),
              static_cast<unsigned long long>(m.ReplicatedTotal()),
              static_cast<double>(m.shuffle_bytes) / (1024.0 * 1024.0),
              static_cast<double>(m.shuffle_remote_bytes) / (1024.0 * 1024.0), m.TotalSeconds(),
              static_cast<unsigned long long>(m.results));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pasjoin;
  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150000;

  std::printf("generating %zu road-activity points and %zu POI points...\n", n,
              n / 2);
  const Dataset activity = datagen::GenerateTigerHydroLike(n, 2026);
  const Dataset pois = datagen::GenerateOsmParksLike(n / 2, 7);
  const double eps = 0.12;

  std::printf("\n%-11s %12s %12s %12s %10s %10s\n", "algorithm", "replicated",
              "shuffleMB", "remoteMB", "time(s)", "results");

  // Adaptive replication, both instantiation policies.
  for (const auto policy :
       {agreements::Policy::kLPiB, agreements::Policy::kDiff}) {
    core::AdaptiveJoinOptions options;
    options.eps = eps;
    options.policy = policy;
    options.workers = 8;
    const Result<exec::JoinRun> run =
        core::AdaptiveDistanceJoin(activity, pois, options);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    PrintRow(run.value().metrics);
  }

  // PBSM baselines: replicate activity / POIs universally, and the eps-grid.
  for (const auto variant : {baselines::PbsmVariant::kUniR,
                             baselines::PbsmVariant::kUniS,
                             baselines::PbsmVariant::kEpsGrid}) {
    baselines::PbsmOptions options;
    options.eps = eps;
    options.workers = 8;
    const Result<exec::JoinRun> run =
        baselines::PbsmDistanceJoin(activity, pois, variant, options);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    PrintRow(run.value().metrics);
  }

  std::printf(
      "\nall rows report the same result count; adaptive replication gets\n"
      "there while shipping far fewer objects across the cluster.\n");
  return 0;
}
