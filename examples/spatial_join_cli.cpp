// Copyright 2026 The pasjoin Authors.
//
// A command-line spatial join tool over CSV point files - the "downstream
// user" interface to the library.
//
// Usage:
//   spatial_join_cli --left a.csv --right b.csv --eps 0.12
//       [--algo lpib|diff|uni_r|uni_s|eps_grid|sedona] [--workers N]
//       [--out pairs.csv] [--demo]
//
// Input CSV rows are `id,x,y[,payload]` (see datagen::ReadCsv). With --demo
// the tool writes two generated sample files first, so it runs out of the
// box.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baselines/pbsm.h"
#include "baselines/sedona_like.h"
#include "core/adaptive_join.h"
#include "datagen/generators.h"
#include "datagen/io.h"
#include "datagen/summary.h"

namespace {

struct CliArgs {
  std::string left;
  std::string right;
  std::string algo = "lpib";
  std::string out;
  double eps = 0.12;
  int workers = 8;
  bool demo = false;
  bool stats = false;
};

void Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --left a.csv --right b.csv --eps 0.12\n"
               "          [--algo lpib|diff|uni_r|uni_s|eps_grid|sedona]\n"
               "          [--workers N] [--out pairs.csv] [--demo] [--stats]\n",
               prog);
}

bool Parse(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--left") {
      const char* v = next();
      if (v == nullptr) return false;
      args->left = v;
    } else if (flag == "--right") {
      const char* v = next();
      if (v == nullptr) return false;
      args->right = v;
    } else if (flag == "--algo") {
      const char* v = next();
      if (v == nullptr) return false;
      args->algo = v;
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out = v;
    } else if (flag == "--eps") {
      const char* v = next();
      if (v == nullptr) return false;
      args->eps = std::atof(v);
    } else if (flag == "--workers") {
      const char* v = next();
      if (v == nullptr) return false;
      args->workers = std::atoi(v);
    } else if (flag == "--demo") {
      args->demo = true;
    } else if (flag == "--stats") {
      args->stats = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->demo) return true;
  return !args->left.empty() && !args->right.empty() && args->eps > 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pasjoin;
  CliArgs args;
  if (!Parse(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  if (args.demo) {
    args.left = "/tmp/pasjoin_demo_left.csv";
    args.right = "/tmp/pasjoin_demo_right.csv";
    std::printf("writing demo inputs %s, %s\n", args.left.c_str(),
                args.right.c_str());
    Status st = datagen::WriteCsv(
        datagen::MakePaperDataset(datagen::PaperDataset::kS1, 30000),
        args.left);
    if (st.ok()) {
      st = datagen::WriteCsv(
          datagen::MakePaperDataset(datagen::PaperDataset::kR1, 30000),
          args.right);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  Result<Dataset> left = datagen::ReadCsv(args.left);
  if (!left.ok()) {
    std::fprintf(stderr, "%s\n", left.status().ToString().c_str());
    return 1;
  }
  Result<Dataset> right = datagen::ReadCsv(args.right);
  if (!right.ok()) {
    std::fprintf(stderr, "%s\n", right.status().ToString().c_str());
    return 1;
  }
  if (args.stats) {
    for (const Result<Dataset>* d : {&left, &right}) {
      std::printf("--- %s ---\n%s\n%s", d->value().name.c_str(),
                  datagen::Summarize(d->value()).ToString().c_str(),
                  datagen::AsciiDensityMap(d->value()).c_str());
    }
  }
  const bool want_pairs = !args.out.empty();

  Result<exec::JoinRun> run = Status::Internal("unreachable");
  if (args.algo == "lpib" || args.algo == "diff") {
    core::AdaptiveJoinOptions options;
    options.eps = args.eps;
    options.workers = args.workers;
    options.policy = args.algo == "lpib" ? agreements::Policy::kLPiB
                                         : agreements::Policy::kDiff;
    options.collect_results = want_pairs;
    run = core::AdaptiveDistanceJoin(left.value(), right.value(), options);
  } else if (args.algo == "uni_r" || args.algo == "uni_s" ||
             args.algo == "eps_grid") {
    baselines::PbsmOptions options;
    options.eps = args.eps;
    options.workers = args.workers;
    options.collect_results = want_pairs;
    const baselines::PbsmVariant variant =
        args.algo == "uni_r"   ? baselines::PbsmVariant::kUniR
        : args.algo == "uni_s" ? baselines::PbsmVariant::kUniS
                               : baselines::PbsmVariant::kEpsGrid;
    run = baselines::PbsmDistanceJoin(left.value(), right.value(), variant,
                                      options);
  } else if (args.algo == "sedona") {
    baselines::SedonaOptions options;
    options.eps = args.eps;
    options.workers = args.workers;
    options.collect_results = want_pairs;
    run = baselines::SedonaLikeDistanceJoin(left.value(), right.value(),
                                            options);
  } else {
    std::fprintf(stderr, "unknown --algo %s\n", args.algo.c_str());
    Usage(argv[0]);
    return 2;
  }

  if (!run.ok()) {
    std::fprintf(stderr, "join failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", run.value().metrics.ToString().c_str());

  if (want_pairs) {
    const Status st = datagen::WritePairsCsv(run.value().pairs, args.out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu pairs to %s\n", run.value().pairs.size(),
                args.out.c_str());
  }
  return 0;
}
