// Copyright 2026 The pasjoin Authors.
//
// Quickstart: the smallest end-to-end use of the library.
//
//   1. generate two skewed point sets;
//   2. run the adaptive-replication eps-distance join (the paper's LPiB);
//   3. inspect the metrics and a few result pairs.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/adaptive_join.h"
#include "datagen/generators.h"

int main() {
  using namespace pasjoin;

  // Two Gaussian-cluster data sets in the same space (Section 7.1's
  // synthetic workload, scaled down).
  const Dataset r = datagen::MakePaperDataset(datagen::PaperDataset::kS1, 50000);
  const Dataset s = datagen::MakePaperDataset(datagen::PaperDataset::kS2, 50000);

  core::AdaptiveJoinOptions options;
  options.eps = 0.12;                           // join threshold (degrees)
  options.policy = agreements::Policy::kLPiB;   // adaptive replication variant
  options.workers = 8;                          // logical workers
  options.collect_results = true;               // materialize the pairs

  core::AdaptiveJoinArtifacts artifacts;
  const Result<exec::JoinRun> run =
      core::AdaptiveDistanceJoin(r, s, options, &artifacts);
  if (!run.ok()) {
    std::fprintf(stderr, "join failed: %s\n", run.status().ToString().c_str());
    return 1;
  }

  const exec::JobMetrics& m = run.value().metrics;
  std::printf("adaptive eps-distance join %s x %s, eps=%.3f\n", r.name.c_str(),
              s.name.c_str(), options.eps);
  std::printf("  grid %dx%d, %zu marked / %zu locked agreement edges\n",
              artifacts.grid_nx, artifacts.grid_ny, artifacts.marked_edges,
              artifacts.locked_edges);
  std::printf("  replicated objects: %llu (R: %llu, S: %llu)\n",
              static_cast<unsigned long long>(m.ReplicatedTotal()),
              static_cast<unsigned long long>(m.replicated_r),
              static_cast<unsigned long long>(m.replicated_s));
  std::printf("  shuffled %.2f MB (%.2f MB remote)\n",
              static_cast<double>(m.shuffle_bytes) / (1024.0 * 1024.0),
              static_cast<double>(m.shuffle_remote_bytes) / (1024.0 * 1024.0));
  std::printf("  result pairs: %llu (candidates: %llu)\n",
              static_cast<unsigned long long>(m.results),
              static_cast<unsigned long long>(m.candidates));
  std::printf("  time: construction %.3fs + join %.3fs = %.3fs\n",
              m.construction_seconds, m.join_seconds, m.TotalSeconds());

  std::printf("  first result pairs:\n");
  const auto& pairs = run.value().pairs;
  for (size_t i = 0; i < pairs.size() && i < 5; ++i) {
    std::printf("    (r=%lld, s=%lld)\n",
                static_cast<long long>(pairs[i].r_id),
                static_cast<long long>(pairs[i].s_id));
  }
  return 0;
}
