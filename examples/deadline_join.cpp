// Copyright 2026 The pasjoin Authors.
//
// Deadlines and cooperative cancellation: runs the same adaptive join three
// ways - once with a generous deadline that is met, once with an impossible
// 50 ms budget that is cut short mid-flight, and once cancelled from another
// thread like a ctrl-c handler would. Demonstrates Deadline::AfterSeconds,
// CancellationSource/CancellationToken, the kDeadlineExceeded/kCancelled
// status codes, and the zero-partial-results guarantee
// (docs/CANCELLATION.md).
//
// Build & run:   ./build/examples/deadline_join
#include <cstdio>
#include <thread>
#include <vector>

#include "core/adaptive_join.h"
#include "datagen/generators.h"

namespace {

pasjoin::core::AdaptiveJoinOptions BaseOptions() {
  pasjoin::core::AdaptiveJoinOptions options;
  options.eps = 0.12;
  options.policy = pasjoin::agreements::Policy::kLPiB;
  options.workers = 8;
  options.collect_results = true;
  return options;
}

}  // namespace

int main() {
  using namespace pasjoin;

  const Dataset r =
      datagen::MakePaperDataset(datagen::PaperDataset::kS1, 200000);
  const Dataset s =
      datagen::MakePaperDataset(datagen::PaperDataset::kS2, 200000);

  // --- 1. a deadline that is met --------------------------------------------
  // The watchdog thread samples the deadline; a run that finishes in time
  // reports how much budget was left in metrics.deadline_slack_seconds.
  {
    core::AdaptiveJoinOptions options = BaseOptions();
    options.deadline = Deadline::AfterSeconds(300.0);
    Result<exec::JoinRun> run = core::AdaptiveDistanceJoin(r, s, options);
    if (!run.ok()) {
      std::fprintf(stderr, "join failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("relaxed deadline: %zu pairs, %.1fs of budget left\n",
                run.value().pairs.size(),
                run.value().metrics.deadline_slack_seconds);
  }

  // --- 2. an impossible deadline --------------------------------------------
  // 50 ms is not enough for 200k x 200k. The watchdog cancels the job, every
  // poll point (drivers, phase runner, kernels) backs out cooperatively, and
  // the join returns kDeadlineExceeded with NO partial results: pairs are
  // published per-task with commit-once semantics, and a cancelled run never
  // reaches the publish step.
  {
    core::AdaptiveJoinOptions options = BaseOptions();
    options.deadline = Deadline::AfterSeconds(0.05);
    Result<exec::JoinRun> run = core::AdaptiveDistanceJoin(r, s, options);
    if (run.ok()) {
      std::printf("surprisingly fast machine: join beat the 50 ms budget\n");
    } else if (run.status().code() == StatusCode::kDeadlineExceeded) {
      std::printf("tight deadline:   cut short as expected - %s\n",
                  run.status().ToString().c_str());
    } else {
      std::fprintf(stderr, "unexpected status: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
  }

  // --- 3. external cancellation ---------------------------------------------
  // A CancellationSource plays the role of a signal handler: any thread may
  // call Cancel() and the running join unwinds at its next poll point. The
  // first Cancel wins; its code and reason surface verbatim in the Status.
  {
    core::AdaptiveJoinOptions options = BaseOptions();
    CancellationSource source;
    options.cancel = source.token();
    std::thread interrupter([&source] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      source.Cancel(StatusCode::kCancelled, "user pressed ctrl-c");
    });
    Result<exec::JoinRun> run = core::AdaptiveDistanceJoin(r, s, options);
    interrupter.join();
    if (run.ok()) {
      std::printf("fast machine:     join finished before the cancel\n");
    } else if (run.status().code() == StatusCode::kCancelled) {
      std::printf("external cancel:  %s\n", run.status().ToString().c_str());
    } else {
      std::fprintf(stderr, "unexpected status: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
  }

  return 0;
}
