// Copyright 2026 The pasjoin Authors.
//
// Extended-object scenario (the paper's Section 8 future-work direction):
// find every (waterway, park) pair within eps, where waterways are
// polylines and parks are polygons. Uses the extent-join module: grid
// multi-assignment plus reference-point duplicate avoidance.
//
// Build & run:   ./build/examples/waterway_park_proximity
#include <cstdio>

#include "extent/extent_join.h"
#include "extent/generators.h"

int main() {
  using namespace pasjoin;
  const Rect region{-124.85, 24.40, -66.88, 49.39};  // continental US

  const extent::ExtentDataset waterways =
      extent::GenerateRiverPolylines(20000, 41, region, /*scale=*/0.5);
  const extent::ExtentDataset parks =
      extent::GenerateParkPolygons(20000, 43, region, /*max_radius=*/0.2);

  std::printf("waterway x park proximity, %zu polylines x %zu polygons\n",
              waterways.size(), parks.size());
  std::printf("%8s %12s %14s %12s %10s\n", "eps", "results", "replicated",
              "candidates", "join(s)");
  for (const double eps : {0.05, 0.1, 0.2}) {
    extent::ExtentJoinOptions options;
    options.eps = eps;
    options.workers = 8;
    const Result<extent::ExtentJoinRun> run =
        extent::GridExtentDistanceJoin(waterways, parks, options);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    const exec::JobMetrics& m = run.value().metrics;
    std::printf("%8.2f %12llu %14llu %12llu %10.3f\n", eps,
                static_cast<unsigned long long>(m.results),
                static_cast<unsigned long long>(m.ReplicatedTotal()),
                static_cast<unsigned long long>(m.candidates), m.join_seconds);
  }
  return 0;
}
