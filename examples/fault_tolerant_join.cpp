// Copyright 2026 The pasjoin Authors.
//
// Fault-tolerant execution: runs the same adaptive join twice - once clean,
// once with injected chaos (20% task failures in every phase, one lost
// logical worker, 4x stragglers) - and verifies the recovered result is
// identical to the fault-free one. Demonstrates the FaultOptions knobs, the
// Result-returning TryRunPartitionedJoin entry point, and the recovery
// metrics (docs/FAULT_TOLERANCE.md).
//
// Build & run:   ./build/examples/fault_tolerant_join
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/adaptive_join.h"
#include "datagen/generators.h"

int main() {
  using namespace pasjoin;

  const Dataset r = datagen::MakePaperDataset(datagen::PaperDataset::kS1, 20000);
  const Dataset s = datagen::MakePaperDataset(datagen::PaperDataset::kS2, 20000);

  core::AdaptiveJoinOptions options;
  options.eps = 0.12;
  options.policy = agreements::Policy::kLPiB;
  options.workers = 8;
  options.collect_results = true;

  // --- 1. fault-free reference run ------------------------------------------
  Result<exec::JoinRun> clean = core::AdaptiveDistanceJoin(r, s, options);
  if (!clean.ok()) {
    std::fprintf(stderr, "clean join failed: %s\n",
                 clean.status().ToString().c_str());
    return 1;
  }
  std::printf("fault-free run:   %s\n",
              clean.value().metrics.ToString().c_str());

  // --- 2. the same join under injected chaos --------------------------------
  // 20% of task attempts fail in every phase, logical worker 2 dies at the
  // start of the join phase (its partitions are rebuilt from lineage on a
  // survivor), and 10% of first attempts straggle at 4x slowdown (backed up
  // by speculative execution).
  exec::FaultOptions& fault = options.fault;
  fault.enabled = true;
  fault.seed = 2026;
  fault.map_failure_p = 0.2;
  fault.regroup_failure_p = 0.2;
  fault.join_failure_p = 0.2;
  fault.dedup_failure_p = 0.2;
  fault.max_retries = 50;
  fault.lost_worker = 2;
  fault.lost_worker_phase = exec::Phase::kJoin;
  fault.straggler_p = 0.1;
  fault.straggler_slowdown = 4.0;
  fault.straggler_base_ms = 5.0;
  fault.speculation = true;

  Result<exec::JoinRun> faulty = core::AdaptiveDistanceJoin(r, s, options);
  if (!faulty.ok()) {
    // With a sane retry budget this only happens when the budget is
    // exhausted (kResourceExhausted) - recovery degrades gracefully into a
    // Status instead of crashing.
    std::fprintf(stderr, "faulty join failed: %s\n",
                 faulty.status().ToString().c_str());
    return 1;
  }
  const exec::JobMetrics& m = faulty.value().metrics;
  std::printf("chaos run:        %s\n", m.ToString().c_str());
  std::printf("  %llu attempts failed, %llu retries, %llu speculative "
              "backups, %.3fs spent recovering\n",
              static_cast<unsigned long long>(m.tasks_failed),
              static_cast<unsigned long long>(m.tasks_retried),
              static_cast<unsigned long long>(m.tasks_speculated),
              m.recovery_seconds);

  // --- 3. recovery is exact --------------------------------------------------
  std::vector<ResultPair> a = clean.value().pairs;
  std::vector<ResultPair> b = faulty.value().pairs;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  if (a != b) {
    std::fprintf(stderr, "ERROR: recovered result differs from fault-free "
                         "result (%zu vs %zu pairs)\n",
                 b.size(), a.size());
    return 1;
  }
  std::printf("recovered result: %zu pairs, identical to the fault-free "
              "run\n", b.size());
  return 0;
}
