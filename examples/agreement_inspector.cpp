// Copyright 2026 The pasjoin Authors.
//
// Inspect the graph of agreements: builds an adaptive instance over skewed
// data and prints (a) a DOT rendering of a grid window (Figure 3 style) and
// (b) the subgraph with the most marked edges (Figure 8 style), ready for
// `dot -Tpng`.
//
// Build & run:   ./build/examples/agreement_inspector > agreements.dot
#include <cstdio>

#include "agreements/dot_export.h"
#include "common/tuple.h"
#include "datagen/generators.h"
#include "grid/grid.h"
#include "grid/stats.h"

int main() {
  using namespace pasjoin;

  const Dataset r = datagen::MakePaperDataset(datagen::PaperDataset::kR1, 80000);
  const Dataset s = datagen::MakePaperDataset(datagen::PaperDataset::kS1, 80000);
  const Rect mbr = ContinentalUsMbr();
  const grid::Grid grid = grid::Grid::Make(mbr, 0.3, 2.0).MoveValue();
  grid::GridStats stats(&grid);
  stats.AddSample(Side::kR, r, 1.0, 1);
  stats.AddSample(Side::kS, s, 1.0, 2);
  agreements::AgreementGraph graph =
      agreements::AgreementGraph::Build(grid, stats, agreements::Policy::kLPiB);
  graph.RunDuplicateFreeMarking();

  std::fprintf(stderr, "grid: %s, marked edges: %zu, locked edges: %zu\n",
               grid.ToString().c_str(), graph.CountMarked(),
               graph.CountLocked());

  // The quartet with the most marked edges, as a Figure 8 style digraph.
  grid::QuartetId busiest = 0;
  int busiest_marks = -1;
  for (grid::QuartetId q = 0; q < grid.num_quartets(); ++q) {
    const agreements::QuartetSubgraph& sub = graph.Subgraph(q);
    int marks = 0;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        if (i != j && sub.edge[i][j].marked) ++marks;
      }
    }
    if (marks > busiest_marks) {
      busiest_marks = marks;
      busiest = q;
    }
  }
  std::fprintf(stderr, "busiest quartet %d (%d marked): %s\n", busiest,
               busiest_marks,
               agreements::SubgraphToString(graph.Subgraph(busiest)).c_str());

  // DOT output on stdout: a window around the busiest quartet.
  const int cx = grid.QuartetX(busiest) - 2;
  const int cy = grid.QuartetY(busiest) - 2;
  std::printf("%s\n", agreements::GridAgreementsToDot(graph, cx, cy, 4, 4).c_str());
  std::printf("%s\n",
              agreements::SubgraphToDot(graph.Subgraph(busiest)).c_str());
  return 0;
}
